#include "cnf/cnf_backend.hpp"

#include "sat/circuit_solver.hpp"

namespace cbq::cnf {

sat::Status CnfSolverBackend::solve(std::span<const aig::Lit> assumptions,
                                    std::int64_t conflictBudget) {
  scratch_.clear();
  for (const aig::Lit l : assumptions) scratch_.push_back(cnf_->litFor(l));
  return cnf_->solver().solveLimited(scratch_, conflictBudget);
}

bool CnfSolverBackend::addClause(std::span<const aig::Lit> lits) {
  scratch_.clear();
  for (const aig::Lit l : lits) scratch_.push_back(cnf_->litFor(l));
  return cnf_->solver().addClause(scratch_);
}

std::unique_ptr<sat::SatBackend> makeSatBackend(sat::BackendKind kind,
                                                const aig::Aig& aig) {
  if (kind == sat::BackendKind::Circuit)
    return std::make_unique<sat::CircuitSolver>(aig);
  return std::make_unique<CnfSolverBackend>(aig);
}

}  // namespace cbq::cnf

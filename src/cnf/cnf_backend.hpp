#pragma once
// The clause-level SAT backend: sat::Solver behind the lazy Tseitin
// encoder, wrapped into the backend-neutral sat::SatBackend surface so it
// can be raced query-for-query against the circuit-native solver.
//
// Two ownership modes:
//  * non-owning — wraps a caller-owned (Solver, AigCnf) pair; this is how
//    sweep::SweepContext exposes its persistent session solver without
//    giving up the direct solver()/cnf() accessors audits and tests use.
//  * owning — constructs a private solver + encoder for one manager; the
//    standalone uses (trace reconstruction, all-SAT enumeration, bench
//    and fuzz harnesses) take this.

#include <memory>

#include "cnf/aig_cnf.hpp"
#include "sat/backend.hpp"
#include "sat/solver.hpp"

namespace cbq::cnf {

class CnfSolverBackend final : public sat::SatBackend {
 public:
  /// Non-owning: `cnf` (and its solver) must outlive the backend.
  explicit CnfSolverBackend(AigCnf& cnf) : cnf_(&cnf) {}

  /// Owning: private solver + encoder bound to `aig`.
  explicit CnfSolverBackend(const aig::Aig& aig)
      : ownSolver_(std::make_unique<sat::Solver>()),
        ownCnf_(std::make_unique<AigCnf>(aig, *ownSolver_)),
        cnf_(ownCnf_.get()) {}

  [[nodiscard]] const char* name() const override { return "cnf"; }

  sat::Status solve(std::span<const aig::Lit> assumptions,
                    std::int64_t conflictBudget) override;

  void focusOn(std::span<const aig::Lit> roots) override {
    cnf_->focusOn(roots);
  }

  bool addClause(std::span<const aig::Lit> lits) override;

  [[nodiscard]] bool modelOf(aig::VarId v) const override {
    return cnf_->modelOf(v);
  }

  void setInterrupt(std::function<bool()> fn) override {
    cnf_->solver().setInterrupt(std::move(fn));
  }

  [[nodiscard]] bool knows(aig::Lit l) const override {
    return cnf_->hasVarFor(l.node());
  }

  [[nodiscard]] std::uint64_t conflicts() const override {
    return cnf_->solver().conflicts();
  }
  [[nodiscard]] std::uint64_t decisions() const override {
    return cnf_->solver().decisions();
  }
  [[nodiscard]] std::uint64_t propagations() const override {
    return cnf_->solver().propagations();
  }

  [[nodiscard]] std::size_t encodedNodes() const override {
    return cnf_->numEncodedNodes();
  }

  [[nodiscard]] AigCnf& cnf() { return *cnf_; }

 private:
  std::unique_ptr<sat::Solver> ownSolver_;  // owning mode only
  std::unique_ptr<AigCnf> ownCnf_;
  AigCnf* cnf_;
  std::vector<sat::Lit> scratch_;
};

/// Standalone backend for `kind` over `aig`. `kind` must already be
/// resolved to a solo engine (Cnf or Circuit — see
/// sweep::SweepContext::soloKind()); Race/Auto fall back to Cnf.
[[nodiscard]] std::unique_ptr<sat::SatBackend> makeSatBackend(
    sat::BackendKind kind, const aig::Aig& aig);

}  // namespace cbq::cnf

#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include "util/fault.hpp"

namespace cbq::bdd {

std::uint32_t BddManager::levelOf(aig::VarId v) {
  auto it = varLevel_.find(v);
  if (it != varLevel_.end()) return it->second;
  const auto level = static_cast<std::uint32_t>(levelToVar_.size());
  varLevel_.emplace(v, level);
  levelToVar_.push_back(v);
  return level;
}

BddRef BddManager::mkNode(std::uint32_t level, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  const UniqueKey key{level, lo, hi};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  if (nodeLimit_ != 0 && nodes_.size() >= nodeLimit_) throw NodeLimitExceeded{};
  if (interrupt_ && (++allocsSinceInterruptPoll_ & 255u) == 0 &&
      interrupt_())
    throw Interrupted{};
  // Injection site: a blown-up BDD allocation deep inside image/ite
  // recursion — the classic organic failure the engine barriers contain.
  CBQ_FAULT_POINT("bdd.alloc");
  nodes_.push_back(Node{level, lo, hi});
  const auto ref = static_cast<BddRef>(nodes_.size() + 1);  // ids offset by 2
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::var(aig::VarId v) {
  return mkNode(levelOf(v), kFalseBdd, kTrueBdd);
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal and trivial cases.
  if (f == kTrueBdd) return g;
  if (f == kFalseBdd) return h;
  if (g == h) return g;
  if (g == kTrueBdd && h == kFalseBdd) return f;
  if (f == g) return ite(f, kTrueBdd, h);
  if (f == h) return ite(f, g, kFalseBdd);

  const TripleKey key{f, g, h};
  if (auto it = iteCache_.find(key); it != iteCache_.end()) return it->second;

  const std::uint32_t top =
      std::min({nodeLevel(f), nodeLevel(g), nodeLevel(h)});
  auto cof = [&](BddRef x, bool positive) {
    if (nodeLevel(x) != top) return x;
    return positive ? hi(x) : lo(x);
  };
  const BddRef r0 = ite(cof(f, false), cof(g, false), cof(h, false));
  const BddRef r1 = ite(cof(f, true), cof(g, true), cof(h, true));
  const BddRef r = mkNode(top, r0, r1);
  iteCache_.emplace(key, r);
  return r;
}

BddRef BddManager::cofactor(BddRef f, aig::VarId v, bool value) {
  const std::uint32_t level = levelOf(v);
  // Simple recursive restriction with a local memo.
  std::unordered_map<BddRef, BddRef> memo;
  auto rec = [&](auto&& self, BddRef x) -> BddRef {
    if (isTerminal(x) || nodeLevel(x) > level) return x;
    if (auto it = memo.find(x); it != memo.end()) return it->second;
    BddRef r;
    if (nodeLevel(x) == level) {
      r = value ? hi(x) : lo(x);
    } else {
      r = mkNode(nodeLevel(x), self(self, lo(x)), self(self, hi(x)));
    }
    memo.emplace(x, r);
    return r;
  };
  return rec(rec, f);
}

BddRef BddManager::existsOne(BddRef f, std::uint32_t level,
                             std::unordered_map<BddRef, BddRef>& memo) {
  if (isTerminal(f) || nodeLevel(f) > level) return f;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  BddRef r;
  if (nodeLevel(f) == level) {
    r = bddOr(lo(f), hi(f));
  } else {
    r = mkNode(nodeLevel(f), existsOne(lo(f), level, memo),
               existsOne(hi(f), level, memo));
  }
  memo.emplace(f, r);
  return r;
}

BddRef BddManager::exists(BddRef f, std::span<const aig::VarId> vars) {
  std::vector<std::uint32_t> levels;
  levels.reserve(vars.size());
  for (const aig::VarId v : vars) levels.push_back(levelOf(v));
  // Quantify bottom-most variables first: their or() results are smaller.
  std::sort(levels.begin(), levels.end(), std::greater<>());
  BddRef r = f;
  for (const std::uint32_t level : levels) {
    std::unordered_map<BddRef, BddRef> memo;
    r = existsOne(r, level, memo);
  }
  return r;
}

BddRef BddManager::composeRec(
    BddRef f, const std::unordered_map<std::uint32_t, BddRef>& byLevel,
    std::unordered_map<BddRef, BddRef>& memo) {
  if (isTerminal(f)) return f;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const std::uint32_t level = nodeLevel(f);
  const BddRef r0 = composeRec(lo(f), byLevel, memo);
  const BddRef r1 = composeRec(hi(f), byLevel, memo);
  BddRef selector;
  if (auto it = byLevel.find(level); it != byLevel.end()) {
    selector = it->second;
  } else {
    selector = mkNode(level, kFalseBdd, kTrueBdd);
  }
  // Substituted functions may depend on variables above `level`, so the
  // recombination must go through ite, not mkNode.
  const BddRef r = ite(selector, r1, r0);
  memo.emplace(f, r);
  return r;
}

BddRef BddManager::compose(
    BddRef f, const std::unordered_map<aig::VarId, BddRef>& map) {
  std::unordered_map<std::uint32_t, BddRef> byLevel;
  byLevel.reserve(map.size());
  for (const auto& [v, g] : map) byLevel.emplace(levelOf(v), g);
  std::unordered_map<BddRef, BddRef> memo;
  return composeRec(f, byLevel, memo);
}

BddRef BddManager::andExistsRec(
    BddRef f, BddRef g, const std::vector<bool>& quantified,
    std::unordered_map<TripleKey, BddRef, TripleHash>& memo) {
  if (f == kFalseBdd || g == kFalseBdd) return kFalseBdd;
  if (f == kTrueBdd && g == kTrueBdd) return kTrueBdd;
  const TripleKey key{f, g, 0};
  if (auto it = memo.find(key); it != memo.end()) return it->second;

  const std::uint32_t top = std::min(nodeLevel(f), nodeLevel(g));
  auto cof = [&](BddRef x, bool positive) {
    if (nodeLevel(x) != top) return x;
    return positive ? hi(x) : lo(x);
  };
  const BddRef r0 =
      andExistsRec(cof(f, false), cof(g, false), quantified, memo);
  BddRef r;
  if (top < quantified.size() && quantified[top]) {
    // Early terminal: x ∨ 1 = 1.
    if (r0 == kTrueBdd) {
      r = kTrueBdd;
    } else {
      const BddRef r1 =
          andExistsRec(cof(f, true), cof(g, true), quantified, memo);
      r = bddOr(r0, r1);
    }
  } else {
    const BddRef r1 =
        andExistsRec(cof(f, true), cof(g, true), quantified, memo);
    r = mkNode(top, r0, r1);
  }
  memo.emplace(key, r);
  return r;
}

BddRef BddManager::andExists(BddRef f, BddRef g,
                             std::span<const aig::VarId> vars) {
  std::vector<bool> quantified(levelToVar_.size(), false);
  for (const aig::VarId v : vars) {
    const std::uint32_t level = levelOf(v);
    if (level >= quantified.size()) quantified.resize(level + 1, false);
    quantified[level] = true;
  }
  std::unordered_map<TripleKey, BddRef, TripleHash> memo;
  return andExistsRec(f, g, quantified, memo);
}

std::size_t BddManager::size(BddRef f) const {
  if (isTerminal(f)) return 0;
  std::vector<BddRef> stack{f};
  std::unordered_map<BddRef, bool> seen;
  std::size_t count = 0;
  while (!stack.empty()) {
    const BddRef x = stack.back();
    stack.pop_back();
    if (isTerminal(x) || seen.contains(x)) continue;
    seen.emplace(x, true);
    ++count;
    stack.push_back(lo(x));
    stack.push_back(hi(x));
  }
  return count;
}

double BddManager::satCount(BddRef f) const {
  std::unordered_map<BddRef, double> memo;
  auto fraction = [&](auto&& self, BddRef x) -> double {
    if (x == kFalseBdd) return 0.0;
    if (x == kTrueBdd) return 1.0;
    if (auto it = memo.find(x); it != memo.end()) return it->second;
    const double r = 0.5 * self(self, lo(x)) + 0.5 * self(self, hi(x));
    memo.emplace(x, r);
    return r;
  };
  double scale = 1.0;
  for (std::size_t i = 0; i < levelToVar_.size(); ++i) scale *= 2.0;
  return fraction(fraction, f) * scale;
}

bool BddManager::evaluate(
    BddRef f,
    const std::unordered_map<aig::VarId, bool>& assignment) const {
  BddRef x = f;
  while (!isTerminal(x)) {
    const aig::VarId v = levelToVar_[nodeLevel(x)];
    auto it = assignment.find(v);
    const bool value = it != assignment.end() && it->second;
    x = value ? hi(x) : lo(x);
  }
  return x == kTrueBdd;
}

bool BddManager::evaluate(BddRef f,
                          const std::vector<bool>& assignment) const {
  BddRef x = f;
  while (!isTerminal(x)) {
    const aig::VarId v = levelToVar_[nodeLevel(x)];
    const bool value = v < assignment.size() && assignment[v];
    x = value ? hi(x) : lo(x);
  }
  return x == kTrueBdd;
}

std::unordered_map<aig::VarId, bool> BddManager::anySat(BddRef f) const {
  std::unordered_map<aig::VarId, bool> out;
  if (f == kFalseBdd) return out;
  BddRef x = f;
  while (!isTerminal(x)) {
    // Without complement edges FALSE is structurally unreachable from a
    // satisfiable function on only-FALSE branches; prefer lo when viable.
    const aig::VarId v = levelToVar_[nodeLevel(x)];
    if (lo(x) != kFalseBdd) {
      out.emplace(v, false);
      x = lo(x);
    } else {
      out.emplace(v, true);
      x = hi(x);
    }
  }
  return out;
}

void BddManager::clearCaches() { iteCache_.clear(); }

BddRef aigToBdd(const aig::Aig& aig, aig::Lit root, BddManager& mgr) {
  const aig::Lit roots[] = {root};
  const auto order = aig.coneAnds(roots);
  std::unordered_map<aig::NodeId, BddRef> val;
  val.reserve(order.size() + 8);

  auto litBdd = [&](aig::Lit l) -> BddRef {
    BddRef b;
    if (aig.isConst(l.node())) {
      b = kFalseBdd;
    } else if (aig.isPi(l.node())) {
      auto it = val.find(l.node());
      if (it == val.end()) {
        b = mgr.var(aig.piVar(l.node()));
        val.emplace(l.node(), b);
      } else {
        b = it->second;
      }
    } else {
      b = val.at(l.node());
    }
    return l.negated() ? mgr.bddNot(b) : b;
  };

  for (const aig::NodeId n : order) {
    val.emplace(n, mgr.bddAnd(litBdd(aig.fanin0(n)), litBdd(aig.fanin1(n))));
  }
  return litBdd(root);
}

}  // namespace cbq::bdd

#pragma once
// Reduced Ordered Binary Decision Diagrams.
//
// Two roles in this reproduction:
//  * size-bounded **BDD sweeping** inside the merge phase (§2.1, after
//    Kuehlmann–Krohm "Equivalence Checking Using Cuts and Heaps"): node
//    budgets make BDD construction abort cheaply on hard cones, and
//  * the canonical **BDD reachability baseline** the paper positions
//    itself against (backward pre-image by vector compose, forward image
//    by and-exists over a partitioned transition relation).
//
// Design: no complement edges (canonicity is then plain structural
// equality), arena allocation without garbage collection, ite-based
// operators with computed tables, and a hard node limit signalled by
// NodeLimitExceeded — resource aborts are the one place this codebase
// uses exceptions for control flow, because they must unwind through
// deep operator recursions.

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aig/aig.hpp"

namespace cbq::bdd {

/// Reference to a BDD node inside one manager. 0 = FALSE, 1 = TRUE.
using BddRef = std::uint32_t;

inline constexpr BddRef kFalseBdd = 0;
inline constexpr BddRef kTrueBdd = 1;

/// Thrown when an operation would exceed the manager's node limit.
struct NodeLimitExceeded : std::runtime_error {
  NodeLimitExceeded() : std::runtime_error("BDD node limit exceeded") {}
};

/// Thrown when the manager's interrupt callback fires mid-operation —
/// same unwind-through-deep-recursion rationale as NodeLimitExceeded.
struct Interrupted : std::runtime_error {
  Interrupted() : std::runtime_error("BDD operation interrupted") {}
};

class BddManager {
 public:
  /// `nodeLimit` caps the total number of allocated nodes (0 = unlimited).
  explicit BddManager(std::size_t nodeLimit = 0) : nodeLimit_(nodeLimit) {}

  /// Installs a cooperative interrupt, polled every few hundred node
  /// allocations; when it returns true the current operation throws
  /// Interrupted. This is how a portfolio cancel lands inside one long
  /// exists/andExists call. Pass nullptr to clear.
  void setInterrupt(std::function<bool()> callback) {
    interrupt_ = std::move(callback);
  }

  // ----- variables -----------------------------------------------------

  /// BDD for external variable `var`; assigns the next free level on
  /// first use (variable order = order of registration).
  BddRef var(aig::VarId v);

  /// Registers `v` (fixing its place in the order) without building.
  void registerVar(aig::VarId v) { levelOf(v); }

  [[nodiscard]] std::size_t numLevels() const { return levelToVar_.size(); }
  [[nodiscard]] aig::VarId varAtLevel(std::uint32_t level) const {
    return levelToVar_[level];
  }

  // ----- operators -------------------------------------------------------

  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef bddNot(BddRef f) { return ite(f, kFalseBdd, kTrueBdd); }
  BddRef bddAnd(BddRef f, BddRef g) { return ite(f, g, kFalseBdd); }
  BddRef bddOr(BddRef f, BddRef g) { return ite(f, kTrueBdd, g); }
  BddRef bddXor(BddRef f, BddRef g) { return ite(f, bddNot(g), g); }
  BddRef bddImplies(BddRef f, BddRef g) { return ite(f, g, kTrueBdd); }

  /// Cofactor w.r.t. a single variable.
  BddRef cofactor(BddRef f, aig::VarId v, bool value);

  /// Existential quantification over the variables of `vars`.
  BddRef exists(BddRef f, std::span<const aig::VarId> vars);

  /// Simultaneous functional composition: each variable present in `map`
  /// is replaced by its BDD. This is backward pre-image F(δ(s,i)).
  BddRef compose(BddRef f, const std::unordered_map<aig::VarId, BddRef>& map);

  /// Combined ∃vars (f ∧ g) — the relational-product workhorse of the
  /// forward-image baseline.
  BddRef andExists(BddRef f, BddRef g, std::span<const aig::VarId> vars);

  // ----- inspection --------------------------------------------------------

  [[nodiscard]] bool isTerminal(BddRef f) const { return f <= 1; }

  /// Number of nodes reachable from `f` (excluding terminals).
  [[nodiscard]] std::size_t size(BddRef f) const;

  /// Total allocated nodes in the manager.
  [[nodiscard]] std::size_t numNodes() const { return nodes_.size(); }

  /// Number of satisfying assignments of `f` over all registered levels.
  [[nodiscard]] double satCount(BddRef f) const;

  /// Evaluates `f` under a (complete for its support) assignment.
  [[nodiscard]] bool evaluate(
      BddRef f, const std::unordered_map<aig::VarId, bool>& assignment) const;

  /// Dense variant: `assignment[v]` is VarId v's value; out-of-range
  /// variables read as false (mirrors aig::Aig::evaluate).
  [[nodiscard]] bool evaluate(BddRef f,
                              const std::vector<bool>& assignment) const;

  /// One satisfying assignment of `f` (empty when f = FALSE). Variables
  /// skipped on the chosen path are left out (free).
  [[nodiscard]] std::unordered_map<aig::VarId, bool> anySat(BddRef f) const;

  /// Drops the operator caches (unique table is kept).
  void clearCaches();

 private:
  struct Node {
    std::uint32_t level;
    BddRef lo;  // value when the level's variable is 0
    BddRef hi;  // value when the level's variable is 1
  };

  struct UniqueKey {
    std::uint32_t level;
    BddRef lo, hi;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueHash {
    std::size_t operator()(const UniqueKey& k) const {
      std::uint64_t h = k.level;
      h = h * 0x9e3779b97f4a7c15ULL + k.lo;
      h = h * 0x9e3779b97f4a7c15ULL + k.hi;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  struct TripleKey {
    BddRef a, b, c;
    bool operator==(const TripleKey&) const = default;
  };
  struct TripleHash {
    std::size_t operator()(const TripleKey& k) const {
      std::uint64_t h = k.a;
      h = h * 0x9e3779b97f4a7c15ULL + k.b;
      h = h * 0x9e3779b97f4a7c15ULL + k.c;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  static constexpr std::uint32_t kTermLevel = 0xffffffffu;

  std::uint32_t levelOf(aig::VarId v);
  [[nodiscard]] std::uint32_t nodeLevel(BddRef f) const {
    return isTerminal(f) ? kTermLevel : nodes_[f - 2].level;
  }
  [[nodiscard]] BddRef lo(BddRef f) const { return nodes_[f - 2].lo; }
  [[nodiscard]] BddRef hi(BddRef f) const { return nodes_[f - 2].hi; }

  BddRef mkNode(std::uint32_t level, BddRef lo, BddRef hi);
  BddRef existsOne(BddRef f, std::uint32_t level,
                   std::unordered_map<BddRef, BddRef>& memo);
  BddRef composeRec(BddRef f,
                    const std::unordered_map<std::uint32_t, BddRef>& byLevel,
                    std::unordered_map<BddRef, BddRef>& memo);
  BddRef andExistsRec(BddRef f, BddRef g, const std::vector<bool>& quantified,
                      std::unordered_map<TripleKey, BddRef, TripleHash>& memo);

  std::vector<Node> nodes_;  // node i stored at index i-2
  std::unordered_map<UniqueKey, BddRef, UniqueHash> unique_;
  std::unordered_map<TripleKey, BddRef, TripleHash> iteCache_;
  std::unordered_map<aig::VarId, std::uint32_t> varLevel_;
  std::vector<aig::VarId> levelToVar_;
  std::size_t nodeLimit_;
  std::function<bool()> interrupt_;
  std::uint32_t allocsSinceInterruptPoll_ = 0;
};

/// Builds the BDD of an AIG cone (aborts with NodeLimitExceeded when the
/// manager's limit is hit). PIs are matched by varId.
BddRef aigToBdd(const aig::Aig& aig, aig::Lit root, BddManager& mgr);

}  // namespace cbq::bdd

#pragma once
// The individual preprocessing passes. Each pass is a pure function
// Network -> Network that preserves the invariant-checking verdict in both
// directions (Safe iff Safe, Unsafe iff Unsafe, with trace correspondence
// through the returned Transform). The Pipeline (pipeline.hpp) sequences
// them; tests drive them one at a time.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "mc/network.hpp"
#include "prep/trace_lift.hpp"
#include "obs/metrics.hpp"

namespace cbq::util {
class ThreadPool;
}

namespace cbq::prep {

/// Outcome of one pass. When `changed` is false the pass was an identity:
/// `net` is default-constructed (empty — the caller keeps its input, so a
/// no-op costs no network copy) and `transform` is null.
struct PassResult {
  mc::Network net;
  std::shared_ptr<const Transform> transform;
  bool changed = false;
};

/// Cone-of-influence reduction: keeps only the latches in the transitive
/// support closure of the bad cone (seed: state variables supporting
/// `bad`; closure: supports of the kept next-state functions) and only the
/// inputs feeding a kept cone. Everything else never influences the
/// violation condition at any step and is dropped.
///
/// `pool` (here and in every pass below; non-owning, null = serial)
/// parallelizes the read-only analysis phases — per-latch support
/// traversals here, candidate scanning in constLatchSweep, cone
/// simulation in latchCorrespondence, the sweeper's signature layer in
/// structuralSimplify. Every pass produces bit-identical networks,
/// transforms, and stats at any thread count.
PassResult coiReduction(const mc::Network& net, obs::Metrics* stats = nullptr,
                        util::ThreadPool* pool = nullptr);

/// Constant/stuck-at latch sweep: a latch whose next-state function is the
/// constant equal to its reset value, or whose next-state is its own
/// current value (a self-loop holds the reset forever), is constant in
/// every reachable state. Its constant is substituted into every remaining
/// cone; substitution can expose further constant latches, so the sweep
/// iterates to closure.
PassResult constLatchSweep(const mc::Network& net,
                           obs::Metrics* stats = nullptr,
                           util::ThreadPool* pool = nullptr);

/// Structural simplification: runs the sweeper (BDD + SAT equivalence
/// merging) over {next functions, bad} and compacts into a fresh manager,
/// re-applying the construction rewrite rules across the live set. Every
/// root function is preserved exactly. `satBudget` bounds each SAT
/// equivalence query; `maxAnds` skips the pass on cones too large to sweep
/// in a preprocessing step (0 = no bound). The result is kept only when
/// the AND count shrinks by at least `minShrink` (fraction): a
/// noise-level shrink still perturbs the cone structure the backward
/// engines cofactor through, which measurably hurts more than two saved
/// nodes help (counter10: 73 -> 71 ANDs, 1.9x slower fixpoint).
/// `interrupt` (optional) is polled inside the sweeper's SAT checks; when
/// it fires the sweep stops with whatever merges are already proven.
PassResult structuralSimplify(const mc::Network& net,
                              std::int64_t satBudget = 200,
                              std::size_t maxAnds = 100000,
                              double minShrink = 0.05,
                              std::function<bool()> interrupt = {},
                              obs::Metrics* stats = nullptr,
                              util::ThreadPool* pool = nullptr);

/// Latch correspondence: greatest-fixpoint partition refinement. Latches
/// start classed by reset value; each round substitutes every latch by its
/// class representative in all next-state functions and splits classes
/// whose members' substituted next-state literals differ structurally
/// (structural hashing makes this a sound, cheap equivalence proof). At
/// the fixpoint, same-class latches are equal in every reachable state by
/// induction; non-representatives are substituted away and dropped.
///
/// Refinement can take up to numLatches rounds and each round composes
/// every next-state cone into the same growing manager (the van Eijk
/// worst case is quadratic), so the pass is gated: skipped when the
/// next-state cones (the part the compose rounds rewrite) exceed
/// `maxAnds` ANDs (0 = no bound), abandoned — soundly, as a no-op — when the
/// working manager outgrows `growthLimit` × the starting node count or
/// when `interrupt` fires between rounds.
/// A word-parallel simulation prefilter runs before the compose loop:
/// each latch variable is driven by its CURRENT class representative's
/// random word, the next-state cones are simulated (stratum-parallel
/// under `pool`), and classes whose members' next-state words differ are
/// split. Simulation under a class-consistent assignment can never
/// distinguish latches the structural fixpoint keeps together (equal
/// composed literals evaluate equally), so the prefilter only
/// anticipates splits the compose loop would make anyway — the final
/// partition is unchanged, but many refinement rounds collapse into
/// cheap simulation rounds instead of manager-growing compose rounds.
PassResult latchCorrespondence(const mc::Network& net,
                               std::size_t maxAnds = 100000,
                               std::size_t growthLimit = 8,
                               std::function<bool()> interrupt = {},
                               obs::Metrics* stats = nullptr,
                               util::ThreadPool* pool = nullptr);

}  // namespace cbq::prep

#include "prep/passes.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sweep/sweeper.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace cbq::prep {

namespace {

using aig::Lit;
using aig::VarId;
using mc::Network;

/// Assembles a reduced network: `kept[i]` selects the surviving latches,
/// `next`/`bad` are the (possibly rewritten) cones in `src`'s manager. The
/// cones are transferred into a fresh manager, which drops dead nodes and
/// re-applies the construction rewrite rules.
Network rebuildNetwork(const Network& src, const std::vector<char>& kept,
                       const std::vector<Lit>& next, Lit bad,
                       const std::vector<VarId>& inputVars) {
  Network out;
  out.name = src.name;
  out.inputVars = inputVars;
  std::vector<Lit> roots;
  roots.reserve(next.size() + 1);
  for (std::size_t i = 0; i < src.numLatches(); ++i) {
    if (!kept[i]) continue;
    out.stateVars.push_back(src.stateVars[i]);
    out.init.push_back(src.init[i]);
    roots.push_back(next[i]);
  }
  roots.push_back(bad);
  const auto moved = out.aig.transferFrom(src.aig, roots);
  out.next.assign(moved.begin(), moved.end() - 1);
  out.bad = moved.back();
  return out;
}

/// The latch's own non-negated literal, or nullopt when the variable has
/// no PI node in `g` (then nothing in `g` can reference it). Read-only —
/// Aig::pi() would create the node.
std::optional<Lit> latchLit(const aig::Aig& g, VarId v) {
  if (!g.hasPi(v)) return std::nullopt;
  return Lit(g.piNodeOf(v), false);
}

}  // namespace

PassResult coiReduction(const Network& net, obs::Metrics* stats,
                        util::ThreadPool* pool) {
  const std::size_t numL = net.numLatches();

  std::unordered_map<VarId, std::size_t> latchOf;
  latchOf.reserve(numL);
  for (std::size_t i = 0; i < numL; ++i) latchOf.emplace(net.stateVars[i], i);

  // Per-cone variable supports up front, as one parallel-for: entry i is
  // the i-th next-state cone, entry numL the bad cone. Each traversal
  // uses per-lane scratch and writes only its own entry, so the support
  // sets — and everything derived from them — are identical at any
  // thread count.
  std::vector<std::vector<VarId>> supportOf(numL + 1);
  {
    const int lanes = pool != nullptr ? pool->threads() : 1;
    std::vector<aig::Aig::TraversalScratch> scratch(
        static_cast<std::size_t>(lanes));
    auto body = [&](std::size_t begin, std::size_t end, int lane) {
      for (std::size_t i = begin; i < end; ++i) {
        const Lit roots[] = {i < numL ? net.next[i] : net.bad};
        supportOf[i] = net.aig.supportVars(
            roots, scratch[static_cast<std::size_t>(lane)]);
      }
    };
    if (pool != nullptr)
      pool->parallelFor(numL + 1, 1, body);
    else
      body(0, numL + 1, 0);
  }

  // Transitive support closure over the latch dependency graph, seeded by
  // the bad cone's state support.
  std::vector<char> needed(numL, 0);
  std::vector<std::size_t> work;
  auto addSupport = [&](const std::vector<VarId>& vars) {
    for (const VarId v : vars) {
      const auto it = latchOf.find(v);
      if (it == latchOf.end() || needed[it->second]) continue;
      needed[it->second] = 1;
      work.push_back(it->second);
    }
  };
  addSupport(supportOf[numL]);
  while (!work.empty()) {
    const std::size_t i = work.back();
    work.pop_back();
    addSupport(supportOf[i]);
  }

  // Inputs survive iff they feed a kept cone.
  std::vector<VarId> support = supportOf[numL];
  for (std::size_t i = 0; i < numL; ++i)
    if (needed[i])
      support.insert(support.end(), supportOf[i].begin(), supportOf[i].end());
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  auto inSupport = [&](VarId v) {
    return std::binary_search(support.begin(), support.end(), v);
  };
  std::vector<VarId> keptInputs;
  std::vector<VarId> droppedInputs;
  for (const VarId v : net.inputVars)
    (inSupport(v) ? keptInputs : droppedInputs).push_back(v);

  const std::size_t droppedLatches =
      numL - static_cast<std::size_t>(
                 std::count(needed.begin(), needed.end(), char{1}));
  if (droppedLatches == 0 && droppedInputs.empty()) return {};

  if (stats) {
    stats->add("prep.coi_latches_dropped",
               static_cast<std::int64_t>(droppedLatches));
    stats->add("prep.coi_inputs_dropped",
               static_cast<std::int64_t>(droppedInputs.size()));
  }
  PassResult out;
  out.net = rebuildNetwork(net, needed, net.next, net.bad, keptInputs);
  out.transform = std::make_shared<CoiTransform>(std::move(droppedInputs));
  out.changed = true;
  return out;
}

PassResult constLatchSweep(const Network& net, obs::Metrics* stats,
                           util::ThreadPool* pool) {
  const std::size_t numL = net.numLatches();

  // Read-only candidate scan first: the common case is "nothing stuck",
  // and it must not cost a full network clone. Pure per-latch literal
  // comparisons writing disjoint flags — a textbook parallel-for.
  std::vector<char> isCand(numL, 0);
  {
    auto body = [&](std::size_t begin, std::size_t end, int) {
      for (std::size_t i = begin; i < end; ++i) {
        const Lit nx = net.next[i];
        isCand[i] = nx == (net.init[i] ? aig::kTrue : aig::kFalse) ||
                    nx == latchLit(net.aig, net.stateVars[i]);
      }
    };
    if (pool != nullptr)
      pool->parallelFor(numL, 4096, body);
    else
      body(0, numL, 0);
  }
  if (std::find(isCand.begin(), isCand.end(), char{1}) == isCand.end())
    return {};

  Network cur = mc::cloneNetwork(net);  // compose mutates the manager

  std::vector<char> kept(numL, 1);
  std::vector<VarId> droppedVars;

  // Substitution to closure: replacing one constant latch can turn
  // another latch's next-state function constant.
  for (;;) {
    std::vector<aig::VarSub> sub;
    for (std::size_t i = 0; i < numL; ++i) {
      if (!kept[i]) continue;
      const Lit nx = cur.next[i];
      const Lit initLit = cur.init[i] ? aig::kTrue : aig::kFalse;
      const bool stuckConst = nx == initLit;  // next == reset constant
      const bool selfLoop = nx == cur.aig.pi(cur.stateVars[i]);
      if (!stuckConst && !selfLoop) continue;
      kept[i] = 0;
      droppedVars.push_back(cur.stateVars[i]);
      sub.emplace_back(cur.stateVars[i], initLit);
    }
    if (sub.empty()) break;
    for (std::size_t i = 0; i < numL; ++i)
      if (kept[i]) cur.next[i] = cur.aig.compose(cur.next[i], sub);
    cur.bad = cur.aig.compose(cur.bad, sub);
  }

  if (droppedVars.empty()) return {};

  if (stats)
    stats->add("prep.const_latches_dropped",
               static_cast<std::int64_t>(droppedVars.size()));
  PassResult out;
  out.net = rebuildNetwork(cur, kept, cur.next, cur.bad, cur.inputVars);
  out.transform =
      std::make_shared<ConstLatchTransform>(std::move(droppedVars));
  out.changed = true;
  return out;
}

PassResult structuralSimplify(const Network& net, std::int64_t satBudget,
                              std::size_t maxAnds, double minShrink,
                              std::function<bool()> interrupt,
                              obs::Metrics* stats, util::ThreadPool* pool) {
  if (maxAnds != 0 && net.aig.numAnds() > maxAnds) return {};

  Network cur = mc::cloneNetwork(net);
  std::vector<Lit> roots(cur.next.begin(), cur.next.end());
  roots.push_back(cur.bad);

  sweep::SweepOptions so;
  so.satBudget = satBudget;
  so.interrupt = std::move(interrupt);
  so.pool = pool;
  const auto sw = sweep::sweep(cur.aig, roots, so);

  std::vector<char> kept(cur.numLatches(), 1);
  std::vector<Lit> next(sw.roots.begin(), sw.roots.end() - 1);
  PassResult out;
  out.net = rebuildNetwork(cur, kept, next, sw.roots.back(), cur.inputVars);
  out.changed =
      out.net.aig.numAnds() < net.aig.numAnds() &&
      static_cast<double>(out.net.aig.numAnds()) <=
      static_cast<double>(net.aig.numAnds()) * (1.0 - minShrink);
  if (!out.changed) return {};

  if (stats) {
    stats->add("prep.sweep_merges",
               static_cast<std::int64_t>(sw.stats.bddMerges +
                                         sw.stats.satMerges +
                                         sw.stats.constMerges));
    stats->add("prep.sweep_ands_removed",
               static_cast<std::int64_t>(net.aig.numAnds() -
                                         out.net.aig.numAnds()));
  }
  out.transform = std::make_shared<StructuralTransform>();
  return out;
}

PassResult latchCorrespondence(const Network& net, std::size_t maxAnds,
                               std::size_t growthLimit,
                               std::function<bool()> interrupt,
                               obs::Metrics* stats, util::ThreadPool* pool) {
  const std::size_t numL = net.numLatches();
  if (numL < 2) return {};
  // Gate on what the compose rounds actually touch — the next-state
  // cones — not the whole manager: a giant bad cone (the million-gate
  // bench family) must not disable the pass that collapses it.
  std::vector<Lit> nextRoots(net.next.begin(), net.next.end());
  if (maxAnds != 0 && net.aig.coneSize(nextRoots) > maxAnds) return {};

  // Greatest-fixpoint refinement: optimistic classes by reset value, then
  // split while members' next-state functions (with every latch replaced
  // by its class representative) differ structurally.
  // Class ids stay dense (first-seen order), so "no class split" is
  // exactly `newCount == numClasses`.
  std::vector<std::size_t> classOf(numL);
  std::size_t numClasses = 0;
  {
    std::size_t byInit[2] = {numL, numL};
    for (std::size_t i = 0; i < numL; ++i) {
      std::size_t& id = byInit[net.init[i] ? 1 : 0];
      if (id == numL) id = numClasses++;
      classOf[i] = id;
    }
  }

  // ----- simulation prefilter (read-only on `net`, stratum-parallel) -----
  // Drive every latch variable with its current class's random word,
  // inputs with fresh noise, simulate the next-state cones word-parallel,
  // and split classes whose members' next-state words differ. A split
  // here only anticipates a structural split below (see passes.hpp), but
  // costs one O(cone) simulation instead of a manager-growing compose
  // round. All RNG draws happen serially, and the simulation writes one
  // slot per node, so the refinement — like everything in this pass — is
  // bit-identical at any thread count.
  {
    std::vector<Lit> simRoots(net.next.begin(), net.next.end());
    const auto simOrder = net.aig.coneAnds(simRoots);
    const auto supVars = net.aig.supportVars(simRoots);
    std::vector<aig::NodeId> lvlOrder = simOrder;
    std::stable_sort(lvlOrder.begin(), lvlOrder.end(),
                     [&](aig::NodeId a, aig::NodeId b) {
                       return net.aig.level(a) < net.aig.level(b);
                     });
    std::vector<std::pair<std::size_t, std::size_t>> strata;
    for (std::size_t i = 0; i < lvlOrder.size();) {
      const unsigned lvl = net.aig.level(lvlOrder[i]);
      std::size_t j = i + 1;
      while (j < lvlOrder.size() && net.aig.level(lvlOrder[j]) == lvl) ++j;
      strata.emplace_back(i, j);
      i = j;
    }

    std::unordered_map<VarId, std::size_t> latchOf;
    latchOf.reserve(numL);
    for (std::size_t i = 0; i < numL; ++i)
      latchOf.emplace(net.stateVars[i], i);

    util::Random rng(0x1a7c4c0221ull);
    std::vector<std::uint64_t> val(net.aig.numNodes(), 0);
    std::size_t simRounds = 0;
    for (;;) {
      if (interrupt && interrupt()) return {};
      // Words: one per class (shared by its members), fresh noise per
      // input — all drawn in fixed (class id / support) order.
      std::vector<std::uint64_t> classWord(numClasses);
      for (auto& w : classWord) w = rng.next64();
      for (std::size_t i = 0; i < numL; ++i)
        if (net.aig.hasPi(net.stateVars[i]))
          val[net.aig.piNodeOf(net.stateVars[i])] = classWord[classOf[i]];
      for (const VarId v : supVars)
        if (!latchOf.contains(v)) val[net.aig.piNodeOf(v)] = rng.next64();

      for (const auto& [sb, se] : strata) {
        auto body = [&](std::size_t begin, std::size_t end, int) {
          for (std::size_t i = begin; i < end; ++i) {
            const aig::NodeId n = lvlOrder[sb + i];
            const Lit f0 = net.aig.fanin0(n);
            const Lit f1 = net.aig.fanin1(n);
            const std::uint64_t a =
                val[f0.node()] ^ (f0.negated() ? ~std::uint64_t{0} : 0);
            const std::uint64_t b =
                val[f1.node()] ^ (f1.negated() ? ~std::uint64_t{0} : 0);
            val[n] = a & b;
          }
        };
        if (pool != nullptr)
          pool->parallelFor(se - sb, 4096, body);
        else
          body(0, se - sb, 0);
      }

      std::unordered_map<std::uint64_t, std::size_t> wordId;
      std::vector<std::size_t> newClassOf(numL);
      std::size_t newCount = 0;
      std::unordered_map<std::uint64_t, std::size_t> splitId;
      for (std::size_t i = 0; i < numL; ++i) {
        const Lit nx = net.next[i];
        const std::uint64_t w =
            val[nx.node()] ^ (nx.negated() ? ~std::uint64_t{0} : 0);
        // Dense word ids keep the split key in one 64-bit word.
        const auto [wit, winserted] = wordId.emplace(w, wordId.size());
        const std::uint64_t key =
            (static_cast<std::uint64_t>(classOf[i]) << 33) |
            static_cast<std::uint64_t>(wit->second);
        const auto [it, inserted] = splitId.emplace(key, newCount);
        if (inserted) ++newCount;
        newClassOf[i] = it->second;
      }
      ++simRounds;
      if (newCount == numClasses) break;  // no sim-distinguishable pair left
      classOf = std::move(newClassOf);
      numClasses = newCount;
    }
    if (stats)
      stats->add("prep.corr_sim_rounds",
                 static_cast<std::int64_t>(simRounds));
  }

  Network cur = mc::cloneNetwork(net);  // compose mutates the manager
  const std::size_t nodeCap =
      growthLimit == 0 ? 0 : cur.aig.numNodes() * growthLimit;

  for (;;) {
    // The refinement is an optimization; abandoning it mid-way (budget
    // fired, or compose rounds bloated the working manager past the cap)
    // is sound — the pass just reports no change.
    if (interrupt && interrupt()) return {};
    if (nodeCap != 0 && cur.aig.numNodes() > nodeCap) return {};
    // Representative = lowest latch index in the class.
    std::vector<std::size_t> repOf(numClasses, numL);
    for (std::size_t i = 0; i < numL; ++i)
      if (repOf[classOf[i]] == numL) repOf[classOf[i]] = i;

    std::vector<aig::VarSub> sub;
    for (std::size_t i = 0; i < numL; ++i) {
      const std::size_t rep = repOf[classOf[i]];
      if (rep != i)
        sub.emplace_back(cur.stateVars[i],
                         cur.aig.pi(cur.stateVars[rep]));
    }

    // Split classes by the substituted next-state literal. Structural
    // hashing canonicalizes equal structure to equal literals, so literal
    // equality is a sound (conservative) equivalence proof.
    std::unordered_map<std::uint64_t, std::size_t> splitId;
    std::vector<std::size_t> newClassOf(numL);
    std::size_t newCount = 0;
    for (std::size_t i = 0; i < numL; ++i) {
      const Lit nx = cur.aig.compose(cur.next[i], sub);
      const std::uint64_t key =
          (static_cast<std::uint64_t>(classOf[i]) << 33) |
          static_cast<std::uint64_t>(nx.raw());
      const auto [it, inserted] = splitId.emplace(key, newCount);
      if (inserted) ++newCount;
      newClassOf[i] = it->second;
    }
    if (newCount == numClasses) break;  // stable partition
    classOf = std::move(newClassOf);
    numClasses = newCount;
  }

  std::vector<std::size_t> repOf(numClasses, numL);
  for (std::size_t i = 0; i < numL; ++i)
    if (repOf[classOf[i]] == numL) repOf[classOf[i]] = i;

  std::vector<char> kept(numL, 1);
  std::vector<aig::VarSub> finalSub;
  std::vector<std::pair<VarId, VarId>> merged;
  for (std::size_t i = 0; i < numL; ++i) {
    const std::size_t rep = repOf[classOf[i]];
    if (rep == i) continue;
    kept[i] = 0;
    finalSub.emplace_back(cur.stateVars[i], cur.aig.pi(cur.stateVars[rep]));
    merged.emplace_back(cur.stateVars[i], cur.stateVars[rep]);
  }
  if (merged.empty()) return {};

  for (std::size_t i = 0; i < numL; ++i)
    if (kept[i]) cur.next[i] = cur.aig.compose(cur.next[i], finalSub);
  cur.bad = cur.aig.compose(cur.bad, finalSub);

  if (stats)
    stats->add("prep.corr_latches_merged",
               static_cast<std::int64_t>(merged.size()));
  PassResult out;
  out.net = rebuildNetwork(cur, kept, cur.next, cur.bad, cur.inputVars);
  out.transform = std::make_shared<LatchCorrTransform>(std::move(merged));
  out.changed = true;
  return out;
}

}  // namespace cbq::prep

#include "prep/pipeline.hpp"

#include <utility>

#include "audit/audit.hpp"
#include "obs/tracer.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace cbq::prep {

namespace {

/// Checks whether simplification already settled the verdict. The Unsafe
/// probe is opportunistic (one input vector — all false), but it is the
/// common endgame of constant propagation: a bad cone rewritten to a
/// function of the initial state alone.
std::optional<mc::Verdict> decideTrivial(const mc::Network& net) {
  if (net.bad == aig::kFalse) return mc::Verdict::Safe;
  if (net.aig.evaluate(net.bad, net.initAssignmentDense()))
    return mc::Verdict::Unsafe;
  return std::nullopt;
}

}  // namespace

PreparedProblem Pipeline::run(const mc::Network& net,
                              const portfolio::Budget& budget) const {
  CBQ_OBS_SPAN("prep", "pipeline");
  util::Timer timer;
  PreparedProblem out;
  out.latchesBefore = net.numLatches();
  out.inputsBefore = net.numInputs();
  out.andsBefore = net.aig.numAnds();
  if (!opts_.enabled) {
    out.seconds = timer.seconds();
    return out;  // identity: no clone, callers run on the original
  }

  // The current view of the problem: the original until the first pass
  // changes something (identity pipelines never copy the network).
  auto view = [&]() -> const mc::Network& { return out.problem(net); };
  auto interrupt = [&budget] { return budget.exhausted(); };

  struct PassSpec {
    const char* name;
    bool enabled;
    std::function<PassResult(const mc::Network&)> pass;
  };
  auto runPass = [&](const PassSpec& spec) -> bool {
    CBQ_OBS_SPAN("prep", spec.name);
    // Injection site: a pass blowing up must make the portfolio fall
    // back to checking the original network, not sink the problem.
    CBQ_FAULT_POINT("prep.pass");
    util::Timer passTimer;
    PassStats ps;
    ps.pass = spec.name;
    ps.latchesBefore = view().numLatches();
    ps.inputsBefore = view().numInputs();
    ps.andsBefore = view().aig.numAnds();

    PassResult r = spec.pass(view());
    const double elapsed = passTimer.seconds();
    out.stats.observe(std::string("prep.") + spec.name + ".seconds", elapsed);
    if (!r.changed) return false;

    out.reduced = std::move(r.net);
    out.identity = false;
    // A pass committed a rewritten network: audit it before anything
    // downstream (another pass or an engine) consumes the corruption.
    CBQ_AUDIT_CHECK(std::string("prep.") + spec.name,
                    audit::auditNetwork(out.reduced));
    if (r.transform) out.stack.push_back(std::move(r.transform));
    ps.latchesAfter = out.reduced.numLatches();
    ps.inputsAfter = out.reduced.numInputs();
    ps.andsAfter = out.reduced.aig.numAnds();
    ps.seconds = elapsed;
    out.passes.push_back(std::move(ps));
    return true;
  };

  // A pass is "dirty" while the network has changed since it last ran;
  // clean passes are skipped, so each pass runs at most once after the
  // last change instead of every round (the expensive case is the
  // terminating round re-running the full sweeper just to discard it).
  const PassSpec specs[] = {
      {"coi", opts_.coi,
       [&](const mc::Network& n) {
         return coiReduction(n, &out.stats, opts_.pool);
       }},
      {"const", opts_.constLatch,
       [&](const mc::Network& n) {
         return constLatchSweep(n, &out.stats, opts_.pool);
       }},
      {"sweep", opts_.structural,
       [&](const mc::Network& n) {
         return structuralSimplify(n, opts_.sweepSatBudget,
                                   opts_.structuralMaxAnds,
                                   opts_.structuralMinShrink, interrupt,
                                   &out.stats, opts_.pool);
       }},
      {"latchcorr", opts_.latchCorr,
       [&](const mc::Network& n) {
         return latchCorrespondence(n, opts_.latchCorrMaxAnds,
                                    opts_.latchCorrGrowth, interrupt,
                                    &out.stats, opts_.pool);
       }},
  };
  bool dirty[4] = {true, true, true, true};

  out.decided = decideTrivial(view());
  for (int round = 0; round < opts_.maxRounds && !out.decided; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < 4; ++i) {
      if (!specs[i].enabled || !dirty[i]) continue;
      if (budget.exhausted()) break;  // ship what is committed so far
      dirty[i] = false;
      if (runPass(specs[i])) {
        changed = true;
        for (std::size_t j = 0; j < 4; ++j)
          if (j != i) dirty[j] = true;
      }
      if ((out.decided = decideTrivial(view())).has_value()) break;
    }
    if (out.decided.has_value() || !changed || budget.exhausted()) break;
  }

  if (out.decided == mc::Verdict::Unsafe) {
    // A step-0 violation: one all-default step, lifted so the trace is a
    // complete original-variable assignment.
    out.decidedCex = out.lifter().lift(mc::Trace{});
    out.stats.add("prep.decided_unsafe");
  } else if (out.decided == mc::Verdict::Safe) {
    out.stats.add("prep.decided_safe");
  }

  out.seconds = timer.seconds();
  return out;
}

bool demoteUnreplayableCex(const mc::Network& original, mc::CheckResult& res,
                           bool requireTrace) {
  if (res.verdict != mc::Verdict::Unsafe) return false;
  if (res.cex.has_value() ? mc::replayHitsBad(original, *res.cex)
                          : !requireTrace)
    return false;
  res.verdict = mc::Verdict::Unknown;
  res.cex.reset();
  res.stats.add("prep.lift_replay_failures");
  return true;
}

mc::CheckResult checkWithPrep(const mc::Engine& engine,
                              const mc::Network& net, const PrepOptions& opts,
                              const portfolio::Budget& budget) {
  // One budget for the whole check: its deadline bounds preprocessing
  // AND the engine run, so `--timeout` means what it says.
  const PreparedProblem prepared = Pipeline(opts).run(net, budget);

  mc::CheckResult res;
  if (prepared.decided.has_value()) {
    res.verdict = *prepared.decided;
    // Credit the pipeline, not an engine that never ran — consistent
    // with the portfolio's winner attribution.
    res.engine = "prep";
    res.cex = prepared.decidedCex;
  } else {
    res = engine.check(prepared.problem(net), budget);
    if (res.verdict == mc::Verdict::Unsafe && res.cex.has_value())
      res.cex = prepared.lifter().lift(std::move(*res.cex));
  }

  // The independent referee on the ORIGINAL network: a lifted trace that
  // does not replay is a preprocessing bug and must never be reported.
  // (Traceless Unsafe passes through — engine parity with the race.)
  demoteUnreplayableCex(net, res);

  res.stats.merge(prepared.stats);
  res.stats.set("prep.seconds", prepared.seconds);
  res.seconds += prepared.seconds;
  return res;
}

}  // namespace cbq::prep

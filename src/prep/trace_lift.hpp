#pragma once
// Counterexample lifting for the preprocessing pipeline.
//
// Every prep pass that rewrites a Network leaves behind a Transform — a
// pure-data record of what it removed or merged, detached from any AIG
// manager so it can be shared across portfolio workers without cloning.
// A TraceLifter holds the transform stack of a whole pipeline run and
// maps a counterexample trace found on the *reduced* model back to a
// trace that replays on the *original* network: passes are undone in
// reverse application order, and the final trace carries an explicit
// value for every original primary input (dropped inputs are free, so
// any constant completes the trace; we pick false).
//
// The current passes never rename or re-time inputs, so lifting is a
// completion problem rather than a renaming problem — but the stack is
// the extension point where a future retiming/phase-abstraction pass
// would plug in a genuinely structural lift.

#include <memory>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "mc/result.hpp"

namespace cbq::prep {

/// The invertible record one pass leaves behind. Implementations must be
/// self-contained data (no pointers into AIG managers): a PreparedProblem
/// is shared read-only across every worker of a portfolio run.
class Transform {
 public:
  virtual ~Transform() = default;
  [[nodiscard]] virtual std::string pass() const = 0;

  /// Rewrites a trace on the pass's *output* model into a trace on its
  /// *input* model, in place.
  virtual void lift(mc::Trace& trace) const = 0;
};

/// Cone-of-influence reduction: latches and inputs outside the bad cone's
/// transitive support were dropped. Dropped inputs are unconstrained, so
/// lifting completes each step with an explicit false.
class CoiTransform final : public Transform {
 public:
  explicit CoiTransform(std::vector<aig::VarId> droppedInputs)
      : droppedInputs_(std::move(droppedInputs)) {}
  [[nodiscard]] std::string pass() const override { return "coi"; }
  void lift(mc::Trace& trace) const override;

  [[nodiscard]] const std::vector<aig::VarId>& droppedInputs() const {
    return droppedInputs_;
  }

 private:
  std::vector<aig::VarId> droppedInputs_;
};

/// Constant/stuck-at latch sweep: latches proven constant were substituted
/// away. Inputs are untouched, so the trace lifts unchanged; the dropped
/// latch list is kept for stats and debugging.
class ConstLatchTransform final : public Transform {
 public:
  explicit ConstLatchTransform(std::vector<aig::VarId> droppedLatches)
      : droppedLatches_(std::move(droppedLatches)) {}
  [[nodiscard]] std::string pass() const override { return "const"; }
  void lift(mc::Trace&) const override {}

  [[nodiscard]] const std::vector<aig::VarId>& droppedLatches() const {
    return droppedLatches_;
  }

 private:
  std::vector<aig::VarId> droppedLatches_;
};

/// Structural simplification (sweeper + compaction): every root function
/// is preserved exactly, so the trace lifts unchanged.
class StructuralTransform final : public Transform {
 public:
  [[nodiscard]] std::string pass() const override { return "sweep"; }
  void lift(mc::Trace&) const override {}
};

/// Latch correspondence: provably-equivalent latches were merged onto a
/// representative. Inputs are untouched and the merged latches track the
/// representative in every reachable state, so the trace lifts unchanged;
/// the (merged var -> representative var) map is kept for stats.
class LatchCorrTransform final : public Transform {
 public:
  explicit LatchCorrTransform(
      std::vector<std::pair<aig::VarId, aig::VarId>> merged)
      : merged_(std::move(merged)) {}
  [[nodiscard]] std::string pass() const override { return "latchcorr"; }
  void lift(mc::Trace&) const override {}

  [[nodiscard]] const std::vector<std::pair<aig::VarId, aig::VarId>>&
  merged() const {
    return merged_;
  }

 private:
  std::vector<std::pair<aig::VarId, aig::VarId>> merged_;
};

/// Maps traces on the fully-reduced model back to the original network.
/// Copyable — the transform stack is shared, immutable state.
class TraceLifter {
 public:
  TraceLifter() = default;
  explicit TraceLifter(
      std::vector<std::shared_ptr<const Transform>> stack)
      : stack_(std::move(stack)) {}

  /// Applies every transform's lift in reverse application order. An
  /// empty trace (a pipeline-decided step-0 violation) is padded to one
  /// all-default step so the result is replayable.
  [[nodiscard]] mc::Trace lift(mc::Trace trace) const;

  [[nodiscard]] std::size_t depth() const { return stack_.size(); }

 private:
  std::vector<std::shared_ptr<const Transform>> stack_;
};

}  // namespace cbq::prep

#pragma once
// Preprocessing pass pipeline — the layer in front of every engine.
//
// conf_date_CabodiCNQ05's backward-reachability procedure wins or loses on
// how small the problem is before the first pre-image is computed: every
// latch in the bad cone's transitive support widens every pre-image, and
// every irrelevant input is another variable the quantifier must
// eliminate. The Pipeline shrinks the Network once per problem —
// cone-of-influence reduction, constant/stuck-at latch sweep, structural
// simplification, latch correspondence, iterated to closure because each
// pass can expose work for the others — and hands every engine (and every
// portfolio worker) the same PreparedProblem. Counterexamples found on the
// reduced model are mapped back through the recorded transform stack
// (trace_lift.hpp) so verdicts, traces and reports always speak the
// original network's variables, checked by the replayHitsBad referee on
// the original network.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mc/engines.hpp"
#include "mc/network.hpp"
#include "mc/result.hpp"
#include "portfolio/budget.hpp"
#include "prep/passes.hpp"
#include "prep/trace_lift.hpp"

namespace cbq::util {
class ThreadPool;
}

namespace cbq::prep {

/// Pass on/off knobs and budgets. `enabled = false` short-circuits the
/// whole pipeline (PreparedProblem.reduced is a plain clone).
struct PrepOptions {
  bool enabled = true;
  bool coi = true;         ///< cone-of-influence reduction
  bool constLatch = true;  ///< constant/stuck-at latch sweep
  bool structural = true;  ///< sweeper-based structural simplification
  bool latchCorr = true;   ///< equivalent-latch merging
  /// Pipeline rounds: passes iterate while any of them changes the
  /// network (const propagation exposes COI reductions and vice versa).
  int maxRounds = 4;
  std::int64_t sweepSatBudget = 200;  ///< conflicts per sweep SAT query
  /// Skip structural simplification above this AND count (preprocessing
  /// must stay cheap relative to the engines; 0 = no bound).
  std::size_t structuralMaxAnds = 100000;
  /// Keep a structural-simplify result only when it shrinks the AND
  /// count by at least this fraction (see prep/passes.hpp on why a
  /// noise-level shrink is a net loss).
  double structuralMinShrink = 0.05;
  /// Skip latch correspondence above this AND count, and abandon it when
  /// its compose rounds grow the working manager past `latchCorrGrowth` ×
  /// the starting node count (the refinement is worst-case quadratic; see
  /// prep/passes.hpp).
  std::size_t latchCorrMaxAnds = 100000;
  std::size_t latchCorrGrowth = 8;
  /// Intra-pass parallelism (non-owning; null = serial). One pool is
  /// shared by every pass and the sweeper's signature layer; results are
  /// bit-identical at any thread count, and the pool's one-region-at-a-
  /// time guard means concurrent pipelines (batch workers) degrade to
  /// serial instead of oversubscribing.
  util::ThreadPool* pool = nullptr;
};

/// Per-pass shrink record for reports.
struct PassStats {
  std::string pass;
  std::size_t latchesBefore = 0, latchesAfter = 0;
  std::size_t inputsBefore = 0, inputsAfter = 0;
  std::size_t andsBefore = 0, andsAfter = 0;
  double seconds = 0.0;
};

/// The pipeline's output: the reduced network, the transform stack that
/// lifts traces back, per-pass stats, and — when simplification already
/// settled the verdict — the decided result. The transform stack is
/// immutable shared data: clone the problem per worker, copy the lifter.
struct PreparedProblem {
  /// True when no enabled pass changed the network. `reduced` is then
  /// EMPTY — an identity pipeline costs no network copy — and callers
  /// must run on the original: use problem(original).
  bool identity = true;
  mc::Network reduced;  ///< the reduced network; meaningful iff !identity
  std::vector<std::shared_ptr<const Transform>> stack;  ///< applied order
  std::vector<PassStats> passes;
  double seconds = 0.0;

  /// Original-network shape, for reports.
  std::size_t latchesBefore = 0, inputsBefore = 0, andsBefore = 0;

  /// Set when preprocessing alone decided the verdict: the bad cone
  /// simplified to constant false (Safe), or the initial state violates
  /// the property under all-false inputs (Unsafe; `decidedCex` is the
  /// already-lifted original-variable trace).
  std::optional<mc::Verdict> decided;
  std::optional<mc::Trace> decidedCex;

  obs::Metrics stats;

  /// The network the engines should check: `reduced` when a pass changed
  /// something, otherwise the (caller-owned) original.
  [[nodiscard]] const mc::Network& problem(
      const mc::Network& original) const {
    return identity ? original : reduced;
  }

  /// Lifter over the recorded transform stack (shared, copyable).
  [[nodiscard]] TraceLifter lifter() const { return TraceLifter(stack); }
};

class Pipeline {
 public:
  explicit Pipeline(PrepOptions opts = {}) : opts_(opts) {}

  /// Runs the enabled passes to closure on `net`. `net` is only read;
  /// the result owns fresh managers. `budget` bounds preprocessing
  /// itself: its deadline/cancel token is polled between passes (and
  /// inside the sweep/latch-correspondence workhorses), so `--timeout`
  /// covers prep, not just the engines. On expiry the pipeline stops
  /// with whatever reduction is already committed — always sound.
  [[nodiscard]] PreparedProblem run(
      const mc::Network& net, const portfolio::Budget& budget = {}) const;

 private:
  PrepOptions opts_;
};

/// The final counterexample referee, shared by every entry path: when
/// `res` claims Unsafe with a (lifted) trace that does not replay on the
/// original network — or carries no trace at all and `requireTrace` is
/// set — the verdict is demoted to Unknown, the trace is dropped and
/// `prep.lift_replay_failures` is counted. An unconfirmed bug is never
/// reported. Returns true when a demotion happened.
bool demoteUnreplayableCex(const mc::Network& original, mc::CheckResult& res,
                           bool requireTrace = false);

/// Sequential single-engine entry path: preprocess, run the engine on the
/// reduced problem under `budget`, lift any counterexample back to the
/// original network (a lifted trace failing the replayHitsBad referee
/// demotes the verdict to Unknown). Prep stats are merged into the
/// result's stats; `result.seconds` includes preprocessing.
mc::CheckResult checkWithPrep(const mc::Engine& engine,
                              const mc::Network& net,
                              const PrepOptions& opts = {},
                              const portfolio::Budget& budget = {});

}  // namespace cbq::prep

#include "prep/trace_lift.hpp"

namespace cbq::prep {

void CoiTransform::lift(mc::Trace& trace) const {
  // Dropped inputs never influence the bad cone, so any completion is
  // sound; an explicit false per step keeps the lifted trace a complete
  // assignment over the original network's inputs.
  for (auto& step : trace.inputs)
    for (const aig::VarId v : droppedInputs_) step.emplace(v, false);
}

mc::Trace TraceLifter::lift(mc::Trace trace) const {
  if (trace.inputs.empty()) trace.inputs.emplace_back();  // step-0 violation
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it)
    (*it)->lift(trace);
  return trace;
}

}  // namespace cbq::prep
